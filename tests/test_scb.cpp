// SCB Cayley-table closure: the symbolic single-qubit algebra (scb_mul,
// scb_commutator, scb_anticommutator, scb_adjoint, scb_entry) must agree
// with the dense 2x2 matrices it abstracts.
#include "ops/scb.hpp"

#include "test_util.hpp"

using namespace gecos;

int main() {
  const cplx iu(0.0, 1.0);

  // Product closure: a*b always matches coeff * basis element exactly.
  for (Scb a : kAllScb)
    for (Scb b : kAllScb) {
      const ScaledScb p = scb_mul(a, b);
      const Matrix dense = scb_matrix(a) * scb_matrix(b);
      const Matrix sym = scb_matrix(p.op) * p.coeff;
      CHECK_NEAR(dense.max_abs_diff(sym), 0.0, 1e-13);
    }

  // Spot checks against the paper's Table IV conventions.
  CHECK(scb_mul(Scb::X, Scb::Y).op == Scb::Z);
  CHECK_NEAR(scb_mul(Scb::X, Scb::Y).coeff - iu, 0.0, 1e-15);
  CHECK(scb_mul(Scb::Sm, Scb::Sp).op == Scb::M);   // |0><1| |1><0| = |0><0|
  CHECK(scb_mul(Scb::Sp, Scb::Sm).op == Scb::N);
  CHECK_NEAR(std::abs(scb_mul(Scb::Sm, Scb::Sm).coeff), 0.0, 1e-15);
  CHECK(scb_mul(Scb::N, Scb::M).coeff == cplx(0.0));

  // Commutator / anticommutator: representable entries match the dense
  // result; and whenever both are defined, [a,b] + {a,b} = 2ab.
  for (Scb a : kAllScb)
    for (Scb b : kAllScb) {
      const Matrix ab = scb_matrix(a) * scb_matrix(b);
      const Matrix ba = scb_matrix(b) * scb_matrix(a);
      if (auto c = scb_commutator(a, b))
        CHECK_NEAR((ab - ba).max_abs_diff(scb_matrix(c->op) * c->coeff), 0.0,
                   1e-13);
      if (auto c = scb_anticommutator(a, b))
        CHECK_NEAR((ab + ba).max_abs_diff(scb_matrix(c->op) * c->coeff), 0.0,
                   1e-13);
      auto comm = scb_commutator(a, b);
      auto anti = scb_anticommutator(a, b);
      if (comm && anti) {
        const Matrix sum =
            scb_matrix(comm->op) * comm->coeff + scb_matrix(anti->op) * anti->coeff;
        CHECK_NEAR(sum.max_abs_diff(ab * cplx(2.0)), 0.0, 1e-13);
      }
    }

  // Adjoint stays in the basis and matches the dense dagger.
  for (Scb a : kAllScb) {
    CHECK_NEAR(scb_matrix(scb_adjoint(a)).max_abs_diff(scb_matrix(a).dagger()),
               0.0, 1e-15);
    CHECK_EQ(scb_is_hermitian(a), scb_adjoint(a) == a);
  }

  // Entries and the structural predicates.
  for (Scb a : kAllScb) {
    const auto e = scb_entries(a);
    for (int x = 0; x < 2; ++x)
      for (int y = 0; y < 2; ++y)
        CHECK_NEAR(scb_entry(a, x, y) - e[static_cast<std::size_t>(2 * x + y)],
                   0.0, 1e-15);
    const bool offdiag = std::abs(e[1]) + std::abs(e[2]) > 0;
    CHECK_EQ(scb_is_offdiagonal(a), offdiag);
    CHECK_EQ(scb_from_name(scb_name(a)), a);
  }
  CHECK(scb_is_projector(Scb::N) && scb_is_projector(Scb::M));
  CHECK(scb_is_transition(Scb::Sm) && scb_is_transition(Scb::Sp));
  CHECK(scb_is_pauli(Scb::X) && !scb_is_pauli(Scb::I) && !scb_is_pauli(Scb::N));

  return gecos::test::finish("test_scb");
}
